// SIMD-vs-scalar parity suite for the dispatch-invariant PHY kernels
// (dsp/simd). Every kernel in the table is driven over odd lengths,
// misaligned spans and batch tails, and its vector result is compared
// BIT-FOR-BIT (memcmp) against the scalar reference — the determinism
// contract is exact equality, not tolerance. Integration-level parity runs
// whole receive-chain pieces with SIMD toggled at runtime, and the
// Monte-Carlo digest check pins bit-identical sweeps across 1/2/8 threads
// with and without SIMD.
//
// On hosts without a compiled/detected vector backend the dispatch table is
// the scalar table and these tests degenerate to self-comparison — still
// useful as a harness smoke test, and the CI forced-scalar leg
// (ITB_DISABLE_SIMD=1) exercises that path deliberately.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <span>
#include <vector>

#include "channel/impairments.h"
#include "core/arena.h"
#include "core/monte_carlo.h"
#include "dsp/correlate.h"
#include "dsp/fft_plan.h"
#include "dsp/rng.h"
#include "dsp/simd/dispatch.h"
#include "dsp/simd/kernels.h"
#include "phy/batch.h"
#include "wifi/barker.h"
#include "wifi/cck.h"
#include "wifi/qam.h"
#include "zigbee/oqpsk.h"

namespace itb::dsp::simd {
namespace {

/// Scoped runtime SIMD toggle; restores the default (enabled) on exit.
class SimdGuard {
 public:
  explicit SimdGuard(bool enabled) { set_simd_enabled(enabled); }
  ~SimdGuard() { set_simd_enabled(true); }
};

CVec random_cvec(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(splitmix64(seed));
  CVec v(n);
  for (auto& x : v) x = rng.complex_gaussian(1.0);
  return v;
}

RVec random_rvec(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(splitmix64(seed));
  RVec v(n);
  for (auto& x : v) x = rng.gaussian();
  return v;
}

::testing::AssertionResult BitsEqual(std::span<const Complex> a,
                                     std::span<const Complex> b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure()
           << "size " << a.size() << " vs " << b.size();
  if (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(Complex)) == 0)
    return ::testing::AssertionSuccess();
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a[i], &b[i], sizeof(Complex)) != 0)
      return ::testing::AssertionFailure()
             << "first divergence at [" << i << "]: (" << a[i].real() << ","
             << a[i].imag() << ") vs (" << b[i].real() << "," << b[i].imag()
             << ")";
  }
  return ::testing::AssertionFailure() << "memcmp mismatch";
}

// Lengths covering the vector width (2 or 4 lanes), odd tails, and sizes
// around the unroll boundaries.
const std::size_t kLengths[] = {1,  2,  3,  4,  5,  6,  7,  8,  9,
                                11, 13, 15, 16, 17, 23, 31, 32, 33,
                                63, 64, 65, 67, 128, 129};

/// Runs `op` twice on misaligned copies of the same data — once with the
/// dispatch table, once with the scalar reference — and bit-compares.
/// `op(table, data_span)` mutates data_span in place.
template <typename Op>
void check_inplace(std::size_t n, std::uint64_t seed, const Op& op) {
  // One leading element makes .data()+1 16-byte (not 32-byte) aligned: every
  // AVX2 kernel must go through unaligned loads.
  CVec base = random_cvec(n + 1, seed);
  CVec a = base;
  CVec b = base;
  op(active_kernels(), std::span<Complex>(a).subspan(1));
  op(*scalar_kernels(), std::span<Complex>(b).subspan(1));
  EXPECT_TRUE(BitsEqual(a, b)) << "n=" << n;
}

TEST(SimdParity, CmulPointwise) {
  for (std::size_t n : kLengths) {
    const CVec spec = random_cvec(n, 1000 + n);
    check_inplace(n, 2000 + n, [&](const KernelTable& k, std::span<Complex> x) {
      k.cmul_pointwise(x.data(), spec.data(), x.size());
    });
  }
}

TEST(SimdParity, ScaleReal) {
  for (std::size_t n : kLengths) {
    check_inplace(n, 3000 + n, [&](const KernelTable& k, std::span<Complex> x) {
      k.scale_real(x.data(), 1.0 / 3.0, x.size());
    });
  }
}

TEST(SimdParity, DotConj) {
  for (std::size_t n : kLengths) {
    const CVec x = random_cvec(n + 1, 4000 + n);
    const CVec p = random_cvec(n + 1, 5000 + n);
    const Complex a =
        active_kernels().dot_conj(x.data() + 1, p.data() + 1, n);
    const Complex b =
        scalar_kernels()->dot_conj(x.data() + 1, p.data() + 1, n);
    EXPECT_EQ(std::memcmp(&a, &b, sizeof(Complex)), 0)
        << "n=" << n << ": (" << a.real() << "," << a.imag() << ") vs ("
        << b.real() << "," << b.imag() << ")";
  }
}

TEST(SimdParity, CorrelateRealAndConj) {
  for (std::size_t nx : kLengths) {
    for (std::size_t np : {std::size_t{1}, std::size_t{3}, std::size_t{11}}) {
      if (np > nx) continue;
      const CVec x = random_cvec(nx + 1, 6000 + nx * 7 + np);
      const RVec pr = random_rvec(np, 6500 + np);
      const CVec pc = random_cvec(np, 6600 + np);
      const std::size_t nout = nx - np + 1;
      CVec outa(nout), outb(nout);
      active_kernels().correlate_real(x.data() + 1, nx, pr.data(), np,
                                      outa.data());
      scalar_kernels()->correlate_real(x.data() + 1, nx, pr.data(), np,
                                       outb.data());
      EXPECT_TRUE(BitsEqual(outa, outb)) << "real nx=" << nx << " np=" << np;
      active_kernels().correlate_conj(x.data() + 1, nx, pc.data(), np,
                                      outa.data());
      scalar_kernels()->correlate_conj(x.data() + 1, nx, pc.data(), np,
                                       outb.data());
      EXPECT_TRUE(BitsEqual(outa, outb)) << "conj nx=" << nx << " np=" << np;
    }
  }
}

TEST(SimdParity, DespreadReal) {
  for (std::size_t np : {std::size_t{7}, std::size_t{11}, std::size_t{16}}) {
    for (std::size_t nsym :
         {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{5},
          std::size_t{9}}) {
      const CVec chips = random_cvec(np * nsym + 1, 7000 + np * 31 + nsym);
      const RVec p = random_rvec(np, 7500 + np);
      CVec outa(nsym), outb(nsym);
      active_kernels().despread_real(chips.data() + 1, p.data(), np, nsym,
                                     static_cast<Real>(np), outa.data());
      scalar_kernels()->despread_real(chips.data() + 1, p.data(), np, nsym,
                                      static_cast<Real>(np), outb.data());
      EXPECT_TRUE(BitsEqual(outa, outb)) << "np=" << np << " nsym=" << nsym;
    }
  }
}

TEST(SimdParity, AccumScaledConj) {
  for (std::size_t n : kLengths) {
    const CVec p = random_cvec(n + 1, 8000 + n);
    const Complex s = random_cvec(1, 8500 + n)[0];
    check_inplace(n, 8600 + n, [&](const KernelTable& k, std::span<Complex> acc) {
      k.accum_scaled_conj(acc.data(), p.data() + 1, s, acc.size());
    });
  }
}

TEST(SimdParity, FirScatterReal) {
  for (std::size_t nx : kLengths) {
    for (std::size_t nt : {std::size_t{1}, std::size_t{5}, std::size_t{12}}) {
      const CVec x = random_cvec(nx + 1, 9000 + nx * 3 + nt);
      const RVec taps = random_rvec(nt, 9500 + nt);
      CVec ya(nx + nt - 1, Complex{}), yb(nx + nt - 1, Complex{});
      active_kernels().fir_scatter_real(x.data() + 1, nx, taps.data(), nt,
                                        ya.data());
      scalar_kernels()->fir_scatter_real(x.data() + 1, nx, taps.data(), nt,
                                         yb.data());
      EXPECT_TRUE(BitsEqual(ya, yb)) << "nx=" << nx << " nt=" << nt;
    }
  }
}

TEST(SimdParity, FirCausalComplex) {
  for (std::size_t n : kLengths) {
    for (std::size_t nt : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                           std::size_t{9}}) {
      const CVec x = random_cvec(n + 1, 10000 + n * 3 + nt);
      const CVec taps = random_cvec(nt, 10500 + nt);
      CVec ya(n, Complex{}), yb(n, Complex{});
      active_kernels().fir_causal_complex(x.data() + 1, n, taps.data(), nt,
                                          ya.data());
      scalar_kernels()->fir_causal_complex(x.data() + 1, n, taps.data(), nt,
                                           yb.data());
      EXPECT_TRUE(BitsEqual(ya, yb)) << "n=" << n << " nt=" << nt;
    }
  }
}

TEST(SimdParity, IqImbalance) {
  const Complex alpha{0.98, 0.02};
  const Complex beta{0.015, -0.01};
  for (std::size_t n : kLengths) {
    check_inplace(n, 11000 + n, [&](const KernelTable& k, std::span<Complex> x) {
      k.iq_imbalance(x.data(), alpha, beta, x.size());
    });
  }
}

TEST(SimdParity, QuantizeMidrise) {
  // Scale some samples far outside full_scale so both clamp branches run.
  for (std::size_t n : kLengths) {
    check_inplace(n, 12000 + n, [&](const KernelTable& k, std::span<Complex> x) {
      for (std::size_t i = 0; i < x.size(); i += 3) x[i] *= 10.0;
      k.quantize_midrise(x.data(), 2.0, 2.0 / 64.0, x.size());
    });
  }
}

TEST(SimdParity, FftStages) {
  for (std::size_t n : {std::size_t{2}, std::size_t{4}, std::size_t{8},
                        std::size_t{16}, std::size_t{64}, std::size_t{256}}) {
    check_inplace(n, 13000 + n, [&](const KernelTable& k, std::span<Complex> x) {
      k.fft_stage2(x.data(), x.size());
    });
    if (n < 4) continue;
    for (bool inverse : {false, true}) {
      check_inplace(n, 13500 + n + (inverse ? 1 : 0),
                    [&](const KernelTable& k, std::span<Complex> x) {
                      k.fft_stage4(x.data(), x.size(), inverse);
                    });
    }
  }
  // Radix-2 butterfly stage: half is always a multiple of 4 in the plan
  // (stages len >= 8); exercise several widths and both directions.
  for (std::size_t half : {std::size_t{4}, std::size_t{8}, std::size_t{16},
                           std::size_t{32}}) {
    const CVec tw = random_cvec(half, 14000 + half);
    for (bool inverse : {false, true}) {
      CVec lo_a = random_cvec(half, 14100 + half);
      CVec hi_a = random_cvec(half, 14200 + half);
      CVec lo_b = lo_a;
      CVec hi_b = hi_a;
      active_kernels().fft_radix2_stage(lo_a.data(), hi_a.data(), tw.data(),
                                        half, inverse);
      scalar_kernels()->fft_radix2_stage(lo_b.data(), hi_b.data(), tw.data(),
                                         half, inverse);
      EXPECT_TRUE(BitsEqual(lo_a, lo_b)) << "half=" << half;
      EXPECT_TRUE(BitsEqual(hi_a, hi_b)) << "half=" << half;
    }
  }
}

TEST(SimdParity, WholeFftTransformMatchesScalarDispatch) {
  for (std::size_t n : {std::size_t{8}, std::size_t{64}, std::size_t{1024}}) {
    const FftPlan& plan = fft_plan(n);
    const CVec x = random_cvec(n, 15000 + n);
    CVec with = x;
    CVec without = x;
    plan.forward(with);
    {
      SimdGuard off(false);
      plan.forward(without);
    }
    EXPECT_TRUE(BitsEqual(with, without)) << "forward n=" << n;
    plan.inverse(with);
    {
      SimdGuard off(false);
      plan.inverse(without);
    }
    EXPECT_TRUE(BitsEqual(with, without)) << "inverse n=" << n;
  }
}

// --- integration-level parity: receive-chain pieces with SIMD toggled -----

TEST(SimdParity, CrossCorrelateDirectDispatchInvariant) {
  const CVec x = random_cvec(777, 16000);
  const CVec p = random_cvec(31, 16001);
  const CVec with = cross_correlate_direct(x, p);
  SimdGuard off(false);
  const CVec without = cross_correlate_direct(x, p);
  EXPECT_TRUE(BitsEqual(with, without));
}

TEST(SimdParity, BarkerDespreadDispatchInvariant) {
  const CVec chips = random_cvec(11 * 37, 17000);
  const CVec with = itb::wifi::despread(chips);
  SimdGuard off(false);
  const CVec without = itb::wifi::despread(chips);
  EXPECT_TRUE(BitsEqual(with, without));
}

TEST(SimdParity, CckDemodulateDispatchInvariant) {
  itb::wifi::CckModulator mod(itb::wifi::DsssRate::k11Mbps);
  Xoshiro256 rng(splitmix64(18000));
  itb::phy::Bits bits(8 * 32);
  for (auto& b : bits) b = rng.bit();
  CVec chips = mod.modulate(bits);
  for (auto& c : chips) c += rng.complex_gaussian(0.05);
  itb::wifi::CckDemodulator demod(itb::wifi::DsssRate::k11Mbps);
  const itb::phy::Bits with = demod.demodulate(chips);
  SimdGuard off(false);
  itb::wifi::CckDemodulator demod2(itb::wifi::DsssRate::k11Mbps);
  const itb::phy::Bits without = demod2.demodulate(chips);
  EXPECT_EQ(with, without);
}

TEST(SimdParity, ZigbeeSoftDespreadDispatchInvariant) {
  itb::zigbee::OqpskConfig cfg;
  const itb::zigbee::OqpskModulator mod(cfg);
  const itb::zigbee::OqpskDemodulator demod(cfg);
  const itb::phy::Bytes payload = {0x12, 0x34, 0xAB, 0xCD, 0x5A};
  Xoshiro256 rng(splitmix64(19000));
  CVec wave = mod.modulate_bytes(payload);
  for (auto& v : wave) v += rng.complex_gaussian(0.02);
  const CVec soft = demod.soft_chips(wave, 0);
  const itb::phy::Bytes with = demod.soft_chips_to_bytes(soft, 8);
  SimdGuard off(false);
  const itb::phy::Bytes without = demod.soft_chips_to_bytes(soft, 8);
  EXPECT_EQ(with, without);
}

TEST(SimdParity, ImpairmentChainDispatchInvariant) {
  itb::channel::ImpairmentConfig cfg =
      itb::channel::ward_mobility_preset(11e6);
  const itb::channel::ImpairmentChain chain(cfg);
  const CVec x = random_cvec(2048, 20000);
  const CVec with = chain.apply(x, 99, 3);
  SimdGuard off(false);
  const CVec without = chain.apply(x, 99, 3);
  EXPECT_TRUE(BitsEqual(with, without));
}

TEST(SimdParity, QamDemodulateDispatchInvariant) {
  const CVec syms = random_cvec(600, 21000);
  const itb::phy::Bits with =
      itb::wifi::qam_demodulate(syms, itb::wifi::Modulation::k64Qam);
  SimdGuard off(false);
  const itb::phy::Bits without =
      itb::wifi::qam_demodulate(syms, itb::wifi::Modulation::k64Qam);
  EXPECT_EQ(with, without);
}

// --- Monte-Carlo digest: threads x SIMD ---------------------------------

TEST(SimdParity, MonteCarloSweepBitIdenticalAcrossThreadsAndDispatch) {
  itb::core::MonteCarloConfig cfg;
  cfg.trials_per_point = 6;
  cfg.psdu_bytes = 16;
  cfg.seed = 7171;
  cfg.impairments = itb::channel::ward_mobility_preset(11e6);
  const std::vector<double> grid{0.0, 6.0};

  std::vector<std::vector<itb::core::PerPoint>> runs;
  for (bool simd_on : {true, false}) {
    SimdGuard guard(simd_on);
    for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                                std::size_t{8}}) {
      cfg.num_threads = threads;
      runs.push_back(itb::core::per_vs_snr(cfg, grid));
    }
  }
  ASSERT_EQ(runs.size(), 6u);
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].size(), runs[0].size()) << "run " << r;
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
      EXPECT_EQ(std::memcmp(&runs[r][i].per_monte_carlo,
                            &runs[0][i].per_monte_carlo, sizeof(double)),
                0)
          << "run " << r << " point " << i;
      EXPECT_EQ(runs[r][i].trials, runs[0][i].trials);
    }
  }
}

// --- dispatch plumbing ---------------------------------------------------

TEST(SimdDispatch, RuntimeToggleSelectsScalarTable) {
  EXPECT_EQ(&active_kernels(), &active_kernels());
  {
    SimdGuard off(false);
    EXPECT_EQ(active_level(), Level::kScalar);
    EXPECT_EQ(&active_kernels(), scalar_kernels());
  }
  // Restored default: active equals detected.
  EXPECT_EQ(active_level(), detected_level());
}

TEST(SimdDispatch, CompiledAndDetectedAreConsistent) {
  // detected can never exceed compiled, and the scalar table always exists.
  if (detected_level() == Level::kAvx2) {
    EXPECT_NE(avx2_kernels(), nullptr);
  }
  if (detected_level() == Level::kNeon) {
    EXPECT_NE(neon_kernels(), nullptr);
  }
  EXPECT_NE(scalar_kernels(), nullptr);
}

}  // namespace
}  // namespace itb::dsp::simd
