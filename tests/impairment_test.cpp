// RF impairment chain + receiver synchronization tests: determinism of the
// counter-based substreams, per-stage sanity, the ISSUE-4 acceptance
// criteria (OFDM at +-40 ppm tag CFO; thread-count-invariant Monte Carlo
// with impairments), and receiver sync behaviour under offsets.
#include <gtest/gtest.h>

#include <cmath>

#include "channel/awgn.h"
#include "channel/impairments.h"
#include "core/interscatter.h"
#include "core/monte_carlo.h"
#include "dsp/mixer.h"
#include "dsp/rng.h"
#include "dsp/spectrum.h"
#include "dsp/units.h"
#include "sim/network.h"
#include "wifi/dsss_rx.h"
#include "wifi/dsss_tx.h"
#include "wifi/ofdm_rx.h"
#include "wifi/ofdm_tx.h"
#include "zigbee/frame.h"

namespace itb {
namespace {

using dsp::Complex;
using dsp::CVec;
using dsp::Real;

CVec test_tone(std::size_t n) {
  CVec x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Real ph = dsp::kTwoPi * 0.01 * static_cast<Real>(i);
    x[i] = Complex{std::cos(ph), std::sin(ph)};
  }
  return x;
}

// --- determinism contract -------------------------------------------------

TEST(ImpairmentChain, SameSeedStreamBitIdentical) {
  channel::ImpairmentConfig cfg = channel::implant_tissue_preset(11e6);
  const channel::ImpairmentChain chain(cfg);
  const CVec x = test_tone(2048);
  const CVec a = chain.apply(x, 42, 7);
  const CVec b = chain.apply(x, 42, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].real(), b[i].real());
    EXPECT_EQ(a[i].imag(), b[i].imag());
  }
}

TEST(ImpairmentChain, DistinctStreamsDiffer) {
  channel::ImpairmentConfig cfg = channel::implant_tissue_preset(11e6);
  const channel::ImpairmentChain chain(cfg);
  const CVec x = test_tone(2048);
  const CVec a = chain.apply(x, 42, 0);
  const CVec b = chain.apply(x, 42, 1);
  Real diff = 0.0;
  for (std::size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
    diff += std::abs(a[i] - b[i]);
  }
  EXPECT_GT(diff, 1e-6);
}

TEST(ImpairmentChain, SubstreamSeedsDecorrelated) {
  // Neighbouring (stream, stage) pairs must land far apart.
  const auto a = channel::impairment_substream(1, 0, 1);
  const auto b = channel::impairment_substream(1, 1, 1);
  const auto c = channel::impairment_substream(1, 0, 2);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(b, c);
}

// --- per-stage sanity -----------------------------------------------------

TEST(ImpairmentChain, CfoStageShiftsSpectrum) {
  channel::ImpairmentConfig cfg;
  cfg.carrier_hz = 2.437e9;
  cfg.sample_rate_hz = 1e6;
  cfg.cfo_ppm = 40.0;  // ~97.5 kHz
  const channel::ImpairmentChain chain(cfg);
  const CVec x = dsp::tone(0.0, 1e6, 8192);
  const CVec y = chain.apply(x, 5);
  const auto psd = dsp::welch_psd(y, 1e6);
  EXPECT_NEAR(dsp::peak_frequency_hz(psd), chain.cfo_hz(), 2 * psd.bin_hz);
  EXPECT_NEAR(chain.cfo_hz(), 97.48e3, 100.0);
}

TEST(ImpairmentChain, QuantizationAddsBoundedError) {
  channel::ImpairmentConfig cfg;
  cfg.adc_bits = 6;
  const channel::ImpairmentChain chain(cfg);
  const CVec x = test_tone(4096);
  const CVec y = chain.apply_frontend(x);
  Real err = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) err += std::norm(y[i] - x[i]);
  err /= static_cast<Real>(x.size());
  EXPECT_GT(err, 0.0);
  // 6 bits at 12 dB headroom: error well below signal power, above 1e-6.
  EXPECT_LT(err, 0.1 * dsp::mean_power(x));
  EXPECT_GT(err, 1e-6 * dsp::mean_power(x));
}

TEST(ImpairmentChain, MultipathPreservesMeanPowerAcrossDraws) {
  channel::ImpairmentConfig cfg;
  channel::MultipathConfig mp;
  mp.num_taps = 3;
  mp.delay_spread_s = 100e-9;
  mp.k_factor = 4.0;
  cfg.multipath = mp;
  cfg.sample_rate_hz = 11e6;
  const channel::ImpairmentChain chain(cfg);
  const CVec x = test_tone(512);
  const Real p_in = dsp::mean_power(x);
  Real acc = 0.0;
  constexpr int kDraws = 400;
  for (int d = 0; d < kDraws; ++d) {
    acc += dsp::mean_power(chain.apply_channel(x, 99, static_cast<std::uint64_t>(d)));
  }
  EXPECT_NEAR(acc / kDraws / p_in, 1.0, 0.15);
}

TEST(ImpairmentChain, SroShiftsSamplingInstants) {
  channel::ImpairmentConfig cfg;
  cfg.sro_ppm = 1000.0;  // exaggerated so the drift is visible
  const channel::ImpairmentChain chain(cfg);
  const CVec x = test_tone(100000);
  const CVec y = chain.apply_channel(x, 1);
  // The internal tail pad keeps the output length (no frame-end clipping)...
  EXPECT_LE(y.size() > x.size() ? y.size() - x.size() : x.size() - y.size(),
            2u);
  // ...while the fast receiver clock reads later and later input positions:
  // sample 90000 lands exactly on input position 90000 * 1.001 = 90090.
  ASSERT_GT(y.size(), 90000u);
  EXPECT_NEAR(y[90000].real(), x[90090].real(), 1e-12);
  EXPECT_NEAR(y[90000].imag(), x[90090].imag(), 1e-12);
}

// --- closed-form penalty --------------------------------------------------

TEST(ImpairedSnr, IdealRadioCostsNothing) {
  channel::ImpairmentConfig cfg;
  EXPECT_NEAR(channel::impaired_snr_db(cfg, 20.0, 1e6), 20.0, 1e-9);
}

TEST(ImpairedSnr, MonotoneInEachKnob) {
  channel::ImpairmentConfig cfg;
  // CFO.
  Real prev = 1e9;
  for (const Real ppm : {0.0, 10.0, 40.0, 160.0}) {
    channel::ImpairmentConfig c = cfg;
    c.cfo_ppm = ppm;
    const Real s = channel::impaired_snr_db(c, 20.0, 1e6);
    EXPECT_LE(s, prev + 1e-12) << "cfo " << ppm;
    prev = s;
  }
  // Quantizer coarseness (fewer bits = worse).
  prev = -1e9;
  for (const unsigned bits : {2u, 4u, 6u, 10u}) {
    channel::ImpairmentConfig c = cfg;
    c.adc_bits = bits;
    const Real s = channel::impaired_snr_db(c, 20.0, 1e6);
    EXPECT_GE(s, prev - 1e-12) << "bits " << bits;
    prev = s;
  }
  // Delay spread.
  prev = 1e9;
  for (const Real ds : {0.0, 25e-9, 100e-9, 400e-9}) {
    channel::ImpairmentConfig c = cfg;
    channel::MultipathConfig mp;
    mp.delay_spread_s = ds;
    c.multipath = mp;
    const Real s = channel::impaired_snr_db(c, 20.0, 1e6);
    EXPECT_LE(s, prev + 1e-12) << "delay spread " << ds;
    prev = s;
  }
}

TEST(ImpairedSnr, PresetsOrderedBySeverity) {
  const Real snr = 20.0;
  const Real ward = channel::impaired_snr_db(
      channel::ward_mobility_preset(11e6), snr, 1e6);
  const Real card = channel::impaired_snr_db(
      channel::card_to_card_preset(11e6), snr, 1e6);
  EXPECT_LT(ward, snr);
  EXPECT_LT(card, snr);
  // The ward's long delay spread and weak LOS must cost more than the
  // near-field card-to-card link.
  EXPECT_LT(ward, card);
}

// --- typed frequency offset (ppm/Hz unification) --------------------------

TEST(FrequencyOffset, PpmAndHzAgree) {
  const auto off = channel::FrequencyOffset::from_ppm(40.0, 2.44e9);
  EXPECT_NEAR(off.hz(), 97.6e3, 1.0);
  EXPECT_NEAR(off.ppm(2.44e9), 40.0, 1e-9);
  EXPECT_NEAR(channel::FrequencyOffset::from_hz(off.hz()).hz(), off.hz(), 0.0);
}

// --- OFDM receiver synchronization (acceptance criterion) -----------------

double ofdm_per_at_cfo(Real cfo_ppm, std::size_t trials, Real snr_db) {
  wifi::OfdmTxConfig txcfg;
  txcfg.rate = wifi::OfdmRate::k24;
  const wifi::OfdmTransmitter tx(txcfg);
  const wifi::OfdmReceiver rx;

  channel::ImpairmentConfig imp;
  imp.carrier_hz = 2.48e9;  // worst-case 2.4 GHz ISM carrier
  imp.sample_rate_hz = 20e6;
  imp.cfo_ppm = cfo_ppm;
  const channel::ImpairmentChain chain(imp);

  std::size_t failures = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    dsp::Xoshiro256 rng(core::trial_seed(777, static_cast<std::uint64_t>(
                                                  cfo_ppm >= 0 ? 1 : 2),
                                         t));
    phy::Bytes psdu(40);
    for (auto& b : psdu) b = static_cast<std::uint8_t>(rng.uniform_int(256));
    const auto frame = tx.transmit(psdu);
    CVec wave = chain.apply_channel(frame.baseband, 777, t);
    wave = channel::add_noise_snr(wave, snr_db, rng);
    const auto r = rx.receive(wave);
    const bool ok = r.has_value() && r->signal_ok &&
                    r->psdu.size() >= psdu.size() &&
                    std::equal(psdu.begin(), psdu.end(), r->psdu.begin());
    failures += ok ? 0 : 1;
  }
  return static_cast<double>(failures) / static_cast<double>(trials);
}

TEST(OfdmSync, DecodesAtPlusMinus40PpmWithin2xOfZeroOffsetPer) {
  constexpr std::size_t kTrials = 40;
  const double per0 = ofdm_per_at_cfo(0.0, kTrials, 20.0);
  const double per_plus = ofdm_per_at_cfo(40.0, kTrials, 20.0);
  const double per_minus = ofdm_per_at_cfo(-40.0, kTrials, 20.0);
  // Acceptance: PER at +-40 ppm within 2x of the zero-offset PER at 20 dB
  // SNR (one-trial quantization slack for finite kTrials).
  const double slack = 1.0 / kTrials;
  EXPECT_LE(per_plus, 2.0 * per0 + slack)
      << "per0 " << per0 << " per+40ppm " << per_plus;
  EXPECT_LE(per_minus, 2.0 * per0 + slack)
      << "per0 " << per0 << " per-40ppm " << per_minus;
}

TEST(OfdmSync, CfoEstimateIsAccurate) {
  wifi::OfdmTxConfig txcfg;
  const wifi::OfdmTransmitter tx(txcfg);
  const phy::Bytes psdu = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto frame = tx.transmit(psdu);
  for (const Real cfo_hz : {-99e3, -40e3, 10e3, 99e3}) {
    const CVec wave = channel::apply_cfo(frame.baseband, cfo_hz, 20e6);
    const wifi::OfdmReceiver rx;
    const auto r = rx.receive(wave);
    ASSERT_TRUE(r.has_value()) << "cfo " << cfo_hz;
    EXPECT_NEAR(r->cfo_est_hz, cfo_hz, 2e3) << "cfo " << cfo_hz;
    EXPECT_EQ(r->psdu.size() >= psdu.size(), true);
    EXPECT_TRUE(std::equal(psdu.begin(), psdu.end(), r->psdu.begin()));
  }
}

TEST(OfdmSync, UncorrectedLargeCfoFails) {
  // Control: without the sync stage, a third-of-a-subcarrier offset is
  // fatal — proves the estimator is doing the work, not receiver slack.
  wifi::OfdmTxConfig txcfg;
  const wifi::OfdmTransmitter tx(txcfg);
  const phy::Bytes psdu = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto frame = tx.transmit(psdu);
  const CVec wave = channel::apply_cfo(frame.baseband, 99e3, 20e6);
  wifi::OfdmRxConfig rxcfg;
  rxcfg.enable_cfo_correction = false;
  const wifi::OfdmReceiver rx(rxcfg);
  const auto r = rx.receive(wave);
  const bool clean = r.has_value() && r->signal_ok &&
                     r->psdu.size() >= psdu.size() &&
                     std::equal(psdu.begin(), psdu.end(), r->psdu.begin());
  EXPECT_FALSE(clean);
}

// --- DSSS receiver synchronization ----------------------------------------

TEST(DsssSync, SurvivesTagOscillatorCfo) {
  wifi::DsssTxConfig txcfg;
  txcfg.rate = wifi::DsssRate::k2Mbps;
  const wifi::DsssTransmitter tx(txcfg);
  const phy::Bytes psdu(31, 0x5C);
  const auto frame = tx.modulate(psdu);
  for (const Real ppm : {-40.0, 40.0}) {
    const auto off = channel::FrequencyOffset::from_ppm(ppm, 2.462e9);
    dsp::Xoshiro256 rng(61);
    CVec wave = channel::apply_cfo(frame.baseband, off, 11e6);
    wave = channel::add_noise_snr(wave, 15.0, rng);
    const wifi::DsssReceiver rx;
    const auto r = rx.receive(wave);
    ASSERT_TRUE(r.has_value()) << "ppm " << ppm;
    EXPECT_EQ(r->psdu, psdu) << "ppm " << ppm;
    EXPECT_NEAR(r->cfo_est_hz, off.hz(), 5e3) << "ppm " << ppm;
  }
}

TEST(DsssSync, CckRatesSurviveCfo) {
  wifi::DsssTxConfig txcfg;
  txcfg.rate = wifi::DsssRate::k11Mbps;
  const wifi::DsssTransmitter tx(txcfg);
  const phy::Bytes psdu(60, 0xA3);
  const auto frame = tx.modulate(psdu);
  const auto off = channel::FrequencyOffset::from_ppm(30.0, 2.462e9);
  const CVec wave = channel::apply_cfo(frame.baseband, off, 11e6);
  const wifi::DsssReceiver rx;
  const auto r = rx.receive(wave);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->psdu, psdu);
}

// --- ZigBee noncoherent despreading ---------------------------------------

TEST(ZigbeeSync, SurvivesStaticRotationAndCfo) {
  const zigbee::Bytes payload = {0xDE, 0xAD, 0xBE, 0xEF, 0x42};
  const auto tx = zigbee::zigbee_transmit(payload);
  const Real fs = zigbee::OqpskConfig{}.sample_rate_hz();
  // Arbitrary static rotation plus a 40 ppm-class carrier offset.
  for (const Real cfo_hz : {0.0, 40e3, -60e3}) {
    const CVec wave = channel::apply_cfo(tx.baseband, cfo_hz, fs, 1.234);
    const auto r = zigbee::zigbee_receive(wave);
    ASSERT_TRUE(r.has_value()) << "cfo " << cfo_hz;
    EXPECT_TRUE(r->fcs_ok) << "cfo " << cfo_hz;
    EXPECT_EQ(r->payload, payload) << "cfo " << cfo_hz;
  }
}

// --- Monte Carlo with impairments (acceptance criterion) ------------------

TEST(MonteCarloImpaired, BitIdenticalAcrossThreadCounts) {
  core::MonteCarloConfig cfg;
  cfg.trials_per_point = 12;
  cfg.impairments = channel::implant_tissue_preset(11e6, 2.462e9);
  const std::vector<double> grid = {2.0, 8.0, 14.0};

  std::vector<std::vector<core::PerPoint>> runs;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    core::MonteCarloConfig c = cfg;
    c.num_threads = threads;
    runs.push_back(core::per_vs_snr(c, grid));
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].size(), runs[0].size());
    for (std::size_t p = 0; p < runs[0].size(); ++p) {
      EXPECT_EQ(runs[r][p].per_monte_carlo, runs[0][p].per_monte_carlo)
          << "thread run " << r << " point " << p;
    }
  }
}

TEST(MonteCarloImpaired, ImpairmentsRaisePerMidWaterfall) {
  core::MonteCarloConfig clean;
  clean.trials_per_point = 25;
  core::MonteCarloConfig dirty = clean;
  channel::ImpairmentConfig imp;
  imp.sample_rate_hz = 11e6;
  imp.adc_bits = 3;  // harshly quantized reader
  dirty.impairments = imp;
  const std::vector<double> grid = {4.0};
  const auto a = core::per_vs_snr(clean, grid);
  const auto b = core::per_vs_snr(dirty, grid);
  EXPECT_GE(b[0].per_monte_carlo, a[0].per_monte_carlo - 1e-12);
}

// --- scenario plumbing ----------------------------------------------------

TEST(InterscatterImpaired, PresetResolvesAndFrameStillDecodesUpClose) {
  core::UplinkScenario s;
  s.tag_rx_distance_m = 1.0;
  s.impairment_preset = channel::ImpairmentPreset::kImplantTissue;
  const core::InterscatterSystem sys(s);
  const auto cfg = sys.resolved_impairments();
  ASSERT_TRUE(cfg.has_value());
  EXPECT_NEAR(cfg->cfo_ppm, 40.0, 1e-9);
  const phy::Bytes psdu(20, 0x77);
  const auto r = sys.simulate_frame(psdu);
  EXPECT_TRUE(r.detected);
  EXPECT_TRUE(r.payload_ok);
}

TEST(NetworkImpaired, PresetDegradesLinksDeterministically) {
  sim::NetworkConfig cfg;
  cfg.topology.num_tags = 64;
  cfg.rounds = 2;
  sim::NetworkConfig impaired = cfg;
  impaired.impairment_preset = channel::ImpairmentPreset::kWardMobility;

  const sim::NetworkCoordinator clean(cfg);
  const sim::NetworkCoordinator dirty(impaired);
  // Every link's SNR is degraded, never improved.
  for (std::size_t t = 0; t < clean.links().size(); ++t) {
    EXPECT_LE(dirty.links()[t].snr_db, clean.links()[t].snr_db + 1e-12);
    EXPECT_GE(dirty.links()[t].reply_per, clean.links()[t].reply_per - 1e-12);
  }
  // And the run stays thread-count invariant.
  sim::NetworkConfig one = impaired;
  one.num_threads = 1;
  sim::NetworkConfig eight = impaired;
  eight.num_threads = 8;
  const auto a = sim::NetworkCoordinator(one).run();
  const auto b = sim::NetworkCoordinator(eight).run();
  EXPECT_EQ(a.replies_received, b.replies_received);
  EXPECT_EQ(a.collisions, b.collisions);
}

}  // namespace
}  // namespace itb
