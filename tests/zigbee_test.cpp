// Tests for the 802.15.4 O-QPSK DSSS PHY and frame layer.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "channel/awgn.h"
#include "dsp/rng.h"
#include "dsp/spectrum.h"
#include "zigbee/frame.h"
#include "zigbee/oqpsk.h"

namespace itb::zigbee {
namespace {

using itb::dsp::Real;

TEST(ChipTable, SixteenDistinctSequences) {
  std::set<std::uint32_t> unique(chip_table().begin(), chip_table().end());
  EXPECT_EQ(unique.size(), 16u);
}

TEST(ChipTable, LargeMinimumPairwiseDistance) {
  // The 802.15.4 quasi-orthogonal set keeps pairwise Hamming distance
  // large; the worst case across the family is well above single-chip
  // error tolerance.
  std::size_t min_dist = 32;
  const auto& t = chip_table();
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t j = i + 1; j < 16; ++j) {
      const std::size_t d =
          static_cast<std::size_t>(__builtin_popcount(t[i] ^ t[j]));
      min_dist = std::min(min_dist, d);
    }
  }
  EXPECT_GE(min_dist, 10u);
}

TEST(ChipTable, RotationStructure) {
  // Symbols 1..7 are 4-chip rotations of symbol 0 (the spec's construction).
  const Bits s0 = symbol_chips(0);
  const Bits s1 = symbol_chips(1);
  for (std::size_t c = 0; c < kChipsPerSymbol; ++c) {
    EXPECT_EQ(s1[(c + 4) % kChipsPerSymbol], s0[c]) << "chip " << c;
  }
}

TEST(ChipTable, UpperSymbolsInvertOddChips) {
  const Bits s0 = symbol_chips(0);
  const Bits s8 = symbol_chips(8);
  for (std::size_t c = 0; c < kChipsPerSymbol; ++c) {
    if (c % 2 == 1) {
      EXPECT_NE(s8[c], s0[c]);
    } else {
      EXPECT_EQ(s8[c], s0[c]);
    }
  }
}

TEST(Oqpsk, ChipRoundTrip) {
  OqpskModulator mod;
  OqpskDemodulator demod;
  itb::dsp::Xoshiro256 rng(5);
  Bits chips(256);
  for (auto& c : chips) c = rng.bit();
  const auto samples = mod.modulate_chips(chips);
  const Bits out = demod.demodulate_chips(samples);
  ASSERT_GE(out.size(), chips.size());
  for (std::size_t i = 0; i < chips.size(); ++i) {
    EXPECT_EQ(out[i], chips[i]) << "chip " << i;
  }
}

TEST(Oqpsk, ByteRoundTripThroughChips) {
  OqpskModulator mod;
  OqpskDemodulator demod;
  const Bytes payload = {0x00, 0xFF, 0xA5, 0x3C, 0x77};
  const auto samples = mod.modulate_bytes(payload);
  const Bits chips = demod.demodulate_chips(samples);
  const Bytes out = demod.chips_to_bytes(chips);
  ASSERT_GE(out.size(), payload.size());
  for (std::size_t i = 0; i < payload.size(); ++i) {
    EXPECT_EQ(out[i], payload[i]) << "byte " << i;
  }
}

TEST(Oqpsk, ChipErrorsToleratedBySpreading) {
  OqpskModulator mod;
  OqpskDemodulator demod;
  const Bytes payload = {0x12, 0x34, 0x56};
  const auto samples = mod.modulate_bytes(payload);
  Bits chips = demod.demodulate_chips(samples);
  // Flip 4 chips in each 32-chip symbol: still decodable (min distance >= 10).
  for (std::size_t s = 0; s * kChipsPerSymbol + 28 < chips.size(); ++s) {
    chips[s * kChipsPerSymbol + 3] ^= 1;
    chips[s * kChipsPerSymbol + 11] ^= 1;
    chips[s * kChipsPerSymbol + 19] ^= 1;
    chips[s * kChipsPerSymbol + 27] ^= 1;
  }
  const Bytes out = demod.chips_to_bytes(chips);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    EXPECT_EQ(out[i], payload[i]);
  }
}

TEST(Oqpsk, OccupiedBandwidthNear2Mhz) {
  OqpskModulator mod;
  itb::dsp::Xoshiro256 rng(6);
  Bytes payload(64);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.uniform_int(256));
  const auto samples = mod.modulate_bytes(payload);
  const auto psd =
      itb::dsp::welch_psd(samples, mod.config().sample_rate_hz());
  const Real obw = itb::dsp::occupied_bandwidth_hz(psd, 0.99);
  EXPECT_GT(obw, 1e6);
  EXPECT_LT(obw, 3.5e6);
}

TEST(Frame, PpduLayout) {
  const Bytes ppdu = build_ppdu(Bytes{0xAB, 0xCD});
  // 4 preamble + SFD + PHR + payload(2) + FCS(2).
  ASSERT_EQ(ppdu.size(), 4u + 1 + 1 + 2 + 2);
  EXPECT_EQ(ppdu[4], kSfd);
  EXPECT_EQ(ppdu[5], 4u);  // length = payload + FCS
}

TEST(Frame, TransmitReceiveRoundTrip) {
  const Bytes payload = {'z', 'i', 'g', 'b', 'e', 'e', '!', 0x00, 0xFF};
  const ZigbeeTxResult tx = zigbee_transmit(payload);
  const auto rx = zigbee_receive(tx.baseband);
  ASSERT_TRUE(rx.has_value());
  EXPECT_TRUE(rx->fcs_ok);
  EXPECT_EQ(rx->payload, payload);
}

TEST(Frame, ReceiveWithNoise) {
  const Bytes payload = {1, 2, 3, 4, 5, 6, 7, 8};
  const ZigbeeTxResult tx = zigbee_transmit(payload);
  itb::dsp::Xoshiro256 rng(7);
  const auto noisy = itb::channel::add_noise_snr(tx.baseband, 6.0, rng);
  const auto rx = zigbee_receive(noisy);
  ASSERT_TRUE(rx.has_value());
  EXPECT_TRUE(rx->fcs_ok);
  EXPECT_EQ(rx->payload, payload);
}

TEST(Frame, CorruptedFcsDetected) {
  const Bytes payload = {9, 9, 9};
  ZigbeeTxResult tx = zigbee_transmit(payload);
  // Conjugate one payload symbol's samples (Q-branch inversion). That turns
  // the symbol into its valid conjugate-pair codeword (s XOR 8) — a
  // corruption no PHY detector can correct, coherent or not, because the
  // result is a legal chip sequence for a *different* nibble. Only the FCS
  // can catch it. (A plain chip inversion no longer suffices: the
  // phase-robust despreader corrects it.)
  const std::size_t spc = OqpskConfig{}.samples_per_chip;
  const std::size_t payload_start_chip = 6 * 2 * kChipsPerSymbol;  // after hdr
  const std::size_t a = payload_start_chip * spc;
  for (std::size_t i = a;
       i < a + kChipsPerSymbol * spc && i < tx.baseband.size(); ++i) {
    tx.baseband[i] = std::conj(tx.baseband[i]);
  }
  const auto rx = zigbee_receive(tx.baseband);
  if (rx.has_value()) {
    EXPECT_FALSE(rx->fcs_ok && rx->payload == payload);
  }
}

TEST(Frame, NoSignalNoDetection) {
  itb::dsp::Xoshiro256 rng(8);
  itb::dsp::CVec noise(30000);
  for (auto& v : noise) v = rng.complex_gaussian(1.0);
  EXPECT_FALSE(zigbee_receive(noise).has_value());
}

TEST(Frame, DurationAccounting) {
  const ZigbeeTxResult tx = zigbee_transmit(Bytes(10, 0x42));
  // PPDU = 4+1+1+10+2 = 18 bytes = 36 symbols at 16 us/symbol = 576 us.
  EXPECT_NEAR(tx.duration_us, 576.0, 1.0);
}

}  // namespace
}  // namespace itb::zigbee
