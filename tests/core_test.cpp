// Integration tests for the public facade: end-to-end uplink (BLE tone ->
// tag -> Wi-Fi receiver), budget/waveform cross-checks, and the downlink
// pipeline (802.11g AM -> peak detector).
#include <gtest/gtest.h>

#include "core/downlink.h"
#include "core/interscatter.h"

namespace itb::core {
namespace {

using itb::dsp::Real;

TEST(Interscatter, ToneIsReadyOnConstruction) {
  UplinkScenario s;
  const InterscatterSystem sys(s);
  EXPECT_GT(sys.tone().tone_duration_us(), 200.0);
}

TEST(Interscatter, ShiftMatchesChannelPlan) {
  UplinkScenario s;
  s.ble_channel = 38;
  s.wifi_channel = 11;
  const InterscatterSystem sys(s);
  EXPECT_NEAR(sys.shift_hz(), 36e6, 1.0);
}

TEST(Interscatter, BudgetSaneAtTypicalGeometry) {
  UplinkScenario s;  // 1 ft BLE->tag, 10 ft tag->RX, 0 dBm
  const InterscatterSystem sys(s);
  const UplinkBudget b = sys.budget(31);
  EXPECT_LT(b.rssi_dbm, -40.0);
  EXPECT_GT(b.rssi_dbm, -95.0);
  EXPECT_GT(b.incident_at_tag_dbm, b.rssi_dbm);
}

TEST(Interscatter, PerImprovesWithTxPower) {
  UplinkScenario lo;
  lo.tag_rx_distance_m = 12.0;
  UplinkScenario hi = lo;
  hi.ble_tx_power_dbm = 20.0;
  const UplinkBudget a = InterscatterSystem(lo).budget(31);
  const UplinkBudget b = InterscatterSystem(hi).budget(31);
  EXPECT_LE(b.per, a.per);
  EXPECT_NEAR(b.rssi_dbm - a.rssi_dbm, 20.0, 1e-9);
}

TEST(Interscatter, EndToEndFrameDecodesAtShortRange) {
  UplinkScenario s;
  s.ble_tx_power_dbm = 10.0;
  s.tag_rx_distance_m = 1.0;
  const InterscatterSystem sys(s);
  itb::phy::Bytes psdu(31);
  for (std::size_t i = 0; i < psdu.size(); ++i) {
    psdu[i] = static_cast<std::uint8_t>(i * 7 + 1);
  }
  const UplinkDecodeResult r = sys.simulate_frame(psdu);
  ASSERT_TRUE(r.detected);
  EXPECT_TRUE(r.payload_ok);
  EXPECT_EQ(r.decoded_psdu, psdu);
}

TEST(Interscatter, EndToEndFailsFarBeyondRange) {
  UplinkScenario s;
  s.ble_tx_power_dbm = 0.0;
  s.tag_rx_distance_m = 120.0;  // well past the paper's 0 dBm range
  const InterscatterSystem sys(s);
  const UplinkDecodeResult r = sys.simulate_frame(itb::phy::Bytes(31, 0x5A));
  EXPECT_FALSE(r.detected && r.payload_ok);
}

TEST(Interscatter, WaveformAgreesWithBudgetNearThreshold) {
  // Cross-check: where the budget says PER ~ 0, the waveform path decodes;
  // where it says PER ~ 1, it does not.
  UplinkScenario good;
  good.ble_tx_power_dbm = 20.0;
  good.tag_rx_distance_m = 2.0;
  EXPECT_LT(InterscatterSystem(good).budget(31).per, 0.05);
  EXPECT_TRUE(InterscatterSystem(good).simulate_frame(itb::phy::Bytes(31, 1)).payload_ok);

  UplinkScenario bad = good;
  bad.ble_tx_power_dbm = 0.0;
  bad.tag_rx_distance_m = 90.0;
  EXPECT_GT(InterscatterSystem(bad).budget(31).per, 0.5);
}

TEST(Interscatter, SweepIsMonotoneInDistance) {
  UplinkScenario s;
  const std::vector<Real> d = {1.0, 2.0, 4.0, 8.0, 16.0};
  const auto pts = sweep_distance(s, d, 31);
  ASSERT_EQ(pts.size(), 5u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LT(pts[i].rssi_dbm, pts[i - 1].rssi_dbm);
    EXPECT_GE(pts[i].per, pts[i - 1].per - 1e-9);
  }
}

TEST(Interscatter, TissueLossShrinksRange) {
  UplinkScenario air;
  UplinkScenario implant = air;
  implant.tag_medium_loss_db = 10.0;
  implant.tag_antenna = itb::channel::neural_implant_loop();
  const auto a = InterscatterSystem(air).budget(31);
  const auto b = InterscatterSystem(implant).budget(31);
  EXPECT_GT(a.rssi_dbm, b.rssi_dbm + 15.0);
}

TEST(Interscatter, VersionString) {
  EXPECT_NE(version().find("interscatter"), std::string::npos);
}

// --- downlink ---------------------------------------------------------------------

TEST(Downlink, CleanAtShortRange) {
  DownlinkScenario s;
  s.distance_m = 2.0;
  s.wifi_tx_power_dbm = 15.0;
  const itb::phy::Bits msg = {1, 0, 1, 1, 0, 0, 1, 0, 1, 0, 1, 1};
  const DownlinkResult r = simulate_downlink(s, msg);
  EXPECT_TRUE(r.above_sensitivity);
  EXPECT_EQ(r.received, msg);
  EXPECT_DOUBLE_EQ(r.ber, 0.0);
}

TEST(Downlink, FailsBelowSensitivity) {
  DownlinkScenario s;
  s.distance_m = 30.0;  // far outside the -32 dBm sensitivity radius
  s.wifi_tx_power_dbm = 15.0;
  const itb::phy::Bits msg(20, 1);
  const DownlinkResult r = simulate_downlink(s, msg);
  EXPECT_FALSE(r.above_sensitivity);
  EXPECT_GT(r.ber, 0.2);
}

TEST(Downlink, FixedSeedChipsetWorks) {
  DownlinkScenario s;
  s.chipset = itb::wifi::ath5k_fixed(0x2B);
  s.distance_m = 1.5;
  const itb::phy::Bits msg = {0, 1, 1, 0, 1};
  const DownlinkResult r = simulate_downlink(s, msg);
  EXPECT_EQ(r.received, msg);
}

TEST(Downlink, BerDegradesWithDistance) {
  const itb::phy::Bits msg(24, 1);
  Real prev_ber = -1.0;
  for (const Real d : {2.0, 6.0, 12.0, 25.0}) {
    DownlinkScenario s;
    s.distance_m = d;
    const DownlinkResult r = simulate_downlink(s, msg);
    EXPECT_GE(r.ber, prev_ber - 0.05) << "at " << d << " m";
    prev_ber = r.ber;
  }
}

}  // namespace
}  // namespace itb::core
