// Tests for the BLE substrate: channel map, advertising packets, GFSK, the
// single-tone payload solver (paper §2.2), device profiles and advertiser
// timing.
#include <gtest/gtest.h>

#include <cmath>

#include "ble/advertiser.h"
#include "ble/channel_map.h"
#include "ble/device_profile.h"
#include "ble/gfsk.h"
#include "ble/packet.h"
#include "ble/single_tone.h"
#include "dsp/spectrum.h"
#include "dsp/units.h"

namespace itb::ble {
namespace {

using itb::dsp::Real;

// --- channel map -------------------------------------------------------------

TEST(ChannelMap, AdvertisingChannelFrequencies) {
  EXPECT_DOUBLE_EQ(ChannelMap::frequency_hz(37), 2.402e9);
  EXPECT_DOUBLE_EQ(ChannelMap::frequency_hz(38), 2.426e9);
  EXPECT_DOUBLE_EQ(ChannelMap::frequency_hz(39), 2.480e9);
}

TEST(ChannelMap, DataChannelFrequencies) {
  EXPECT_DOUBLE_EQ(ChannelMap::frequency_hz(0), 2.404e9);
  EXPECT_DOUBLE_EQ(ChannelMap::frequency_hz(10), 2.424e9);
  EXPECT_DOUBLE_EQ(ChannelMap::frequency_hz(11), 2.428e9);
  EXPECT_DOUBLE_EQ(ChannelMap::frequency_hz(36), 2.478e9);
}

TEST(ChannelMap, AllChannelsInsideIsmBand) {
  for (unsigned ch = 0; ch < ChannelMap::kNumChannels; ++ch) {
    const Real f = ChannelMap::frequency_hz(ch);
    EXPECT_GE(f, kIsmLowHz) << "ch " << ch;
    EXPECT_LE(f, kIsmHighHz) << "ch " << ch;
  }
}

TEST(ChannelMap, AdvertisingPredicate) {
  EXPECT_TRUE(ChannelMap::is_advertising(37));
  EXPECT_TRUE(ChannelMap::is_advertising(39));
  EXPECT_FALSE(ChannelMap::is_advertising(0));
  EXPECT_FALSE(ChannelMap::is_advertising(36));
}

TEST(ChannelMap, WifiAndZigbeeGrids) {
  EXPECT_DOUBLE_EQ(wifi_channel_hz(1), 2.412e9);
  EXPECT_DOUBLE_EQ(wifi_channel_hz(6), 2.437e9);
  EXPECT_DOUBLE_EQ(wifi_channel_hz(11), 2.462e9);
  EXPECT_DOUBLE_EQ(zigbee_channel_hz(11), 2.405e9);
  EXPECT_DOUBLE_EQ(zigbee_channel_hz(14), 2.420e9);
  EXPECT_DOUBLE_EQ(zigbee_channel_hz(26), 2.480e9);
}

TEST(ChannelMap, PaperFig3Alignment) {
  // BLE 38 sits at the lower edge of Wi-Fi channel 6 (2437 +/- 11 MHz); the
  // paper's headline configuration backscatters BLE 38 into Wi-Fi channel
  // 11, a 36 MHz shift.
  EXPECT_LE(std::abs(ChannelMap::frequency_hz(38) - wifi_channel_hz(6)), 11e6);
  const Real shift = wifi_channel_hz(11) - ChannelMap::frequency_hz(38);
  EXPECT_NEAR(shift, 36e6, 1e3);
}

// --- packets -----------------------------------------------------------------

class AdvPacketAllChannels : public ::testing::TestWithParam<unsigned> {};

TEST_P(AdvPacketAllChannels, BuildParseRoundTrip) {
  const unsigned ch = GetParam();
  AdvPacketConfig cfg;
  cfg.payload = {0x10, 0x20, 0x30, 0x40, 0x55};
  const AdvPacket pkt = build_adv_packet(cfg, ch);
  const auto parsed = parse_adv_packet(pkt.air_bits, ch);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->crc_ok);
  EXPECT_EQ(parsed->payload, cfg.payload);
  EXPECT_EQ(parsed->advertiser_address, cfg.advertiser_address);
  EXPECT_EQ(parsed->pdu_type, AdvPduType::kAdvNonconnInd);
}

INSTANTIATE_TEST_SUITE_P(Channels, AdvPacketAllChannels,
                         ::testing::Values(0u, 5u, 11u, 20u, 36u, 37u, 38u, 39u));

TEST(AdvPacket, AirStructureOffsets) {
  AdvPacketConfig cfg;
  cfg.payload.assign(31, 0xAB);
  const AdvPacket pkt = build_adv_packet(cfg, 38);
  // preamble(8) + AA(32) + header(16) + AdvA(48) = 104 bits before payload.
  EXPECT_EQ(pkt.payload_start_bit, 104u);
  EXPECT_EQ(pkt.payload_end_bit, 104u + 31 * 8);
  EXPECT_EQ(pkt.crc_start_bit, pkt.payload_end_bit);
  EXPECT_EQ(pkt.air_bits.size(), 104u + 31 * 8 + 24);
  // 47-byte packet = 376 us at LE 1M.
  EXPECT_DOUBLE_EQ(pkt.duration_us(), 376.0);
}

TEST(AdvPacket, CorruptionBreaksCrc) {
  AdvPacketConfig cfg;
  cfg.payload = {1, 2, 3};
  AdvPacket pkt = build_adv_packet(cfg, 37);
  pkt.air_bits[120] ^= 1;  // flip a payload bit
  const auto parsed = parse_adv_packet(pkt.air_bits, 37);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->crc_ok);
}

TEST(AdvPacket, WrongChannelDewhiteningFails) {
  AdvPacketConfig cfg;
  cfg.payload = {1, 2, 3, 4};
  const AdvPacket pkt = build_adv_packet(cfg, 37);
  const auto parsed = parse_adv_packet(pkt.air_bits, 38);
  // Either unparseable or CRC failure — never a clean parse.
  if (parsed.has_value()) {
    EXPECT_FALSE(parsed->crc_ok);
  }
}

TEST(AdvPacket, WrongAccessAddressRejected) {
  AdvPacketConfig cfg;
  cfg.payload = {1};
  AdvPacket pkt = build_adv_packet(cfg, 37);
  pkt.air_bits[10] ^= 1;  // corrupt the AA
  EXPECT_FALSE(parse_adv_packet(pkt.air_bits, 37).has_value());
}

TEST(DataPacket, LongPayloadExtension) {
  DataPacketConfig cfg;
  cfg.payload.assign(200, 0x77);
  cfg.channel_index = 9;
  const AdvPacket pkt = build_data_packet(cfg);
  // 2 ms-class window: 200 bytes = 1600 us of payload air time.
  EXPECT_DOUBLE_EQ(pkt.payload_window_us(), 1600.0);
  EXPECT_GT(pkt.duration_us(), 1600.0);
}

// --- GFSK ---------------------------------------------------------------------

TEST(Gfsk, ConstantAmplitude) {
  GfskModulator mod;
  const Bits bits = {1, 0, 1, 1, 0, 0, 1, 0, 1, 1};
  const itb::dsp::CVec s = mod.modulate(bits);
  for (const auto& v : s) EXPECT_NEAR(std::abs(v), 1.0, 1e-9);
}

TEST(Gfsk, DemodulatesModulatedBits) {
  GfskModulator mod;
  GfskDemodulator demod;
  Bits bits;
  itb::dsp::Xoshiro256 rng(11);
  for (int i = 0; i < 200; ++i) bits.push_back(rng.bit());
  const itb::dsp::CVec s = mod.modulate(bits);
  const Bits out = demod.demodulate(s);
  ASSERT_GE(out.size(), bits.size() - 1);
  std::size_t errors = 0;
  for (std::size_t i = 0; i < bits.size() && i < out.size(); ++i) {
    errors += (out[i] != bits[i]);
  }
  EXPECT_LE(errors, 2u);  // edge symbols may suffer filter transients
}

TEST(Gfsk, OnesRunProducesPositiveDeviation) {
  GfskModulator mod;
  GfskDemodulator demod;
  const Bits bits(64, 1);
  const itb::dsp::CVec s = mod.modulate(bits);
  const itb::dsp::RVec freq = demod.instantaneous_frequency_hz(s);
  // Mid-run instantaneous frequency ~ +250 kHz.
  for (std::size_t i = s.size() / 4; i < 3 * s.size() / 4; ++i) {
    EXPECT_NEAR(freq[i], 250e3, 20e3) << "sample " << i;
  }
}

TEST(Gfsk, AlternatingBitsStayWithin2MhzBandwidth) {
  GfskModulator mod;
  Bits bits;
  for (int i = 0; i < 256; ++i) bits.push_back(i % 2);
  const itb::dsp::CVec s = mod.modulate(bits);
  const itb::dsp::Psd psd = itb::dsp::welch_psd(s, mod.config().sample_rate_hz);
  EXPECT_LT(itb::dsp::occupied_bandwidth_hz(psd, 0.99), 2.2e6);
}

// --- single tone (paper §2.2) --------------------------------------------------

class SingleToneAllAdvChannels
    : public ::testing::TestWithParam<std::tuple<unsigned, ToneSign>> {};

TEST_P(SingleToneAllAdvChannels, PayloadYieldsConstantAirBits) {
  const auto [ch, sign] = GetParam();
  SingleToneSpec spec;
  spec.channel_index = ch;
  spec.sign = sign;
  const SingleToneResult r = make_single_tone_packet(spec);
  // The whole AdvData window must be one constant run.
  EXPECT_EQ(r.tone_start_bit, r.packet.payload_start_bit);
  EXPECT_EQ(r.tone_end_bit, r.packet.payload_end_bit);
  EXPECT_DOUBLE_EQ(r.tone_duration_us(), 31 * 8.0);
  const std::uint8_t want = sign == ToneSign::kHigh ? 1 : 0;
  for (std::size_t i = r.tone_start_bit; i < r.tone_end_bit; ++i) {
    EXPECT_EQ(r.packet.air_bits[i], want) << "bit " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ChannelsAndSigns, SingleToneAllAdvChannels,
    ::testing::Combine(::testing::Values(37u, 38u, 39u),
                       ::testing::Values(ToneSign::kHigh, ToneSign::kLow)));

TEST(SingleTone, PacketStillParsesWithValidCrc) {
  SingleToneSpec spec;
  spec.channel_index = 38;
  const SingleToneResult r = make_single_tone_packet(spec);
  const auto parsed = parse_adv_packet(r.packet.air_bits, 38);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->crc_ok);
  EXPECT_EQ(parsed->payload, r.payload);
}

TEST(SingleTone, AndroidConstraintShortensTone) {
  SingleToneSpec spec;
  spec.channel_index = 38;
  spec.android_api_constraint = true;
  const SingleToneResult r = make_single_tone_packet(spec);
  // Only 24 of 31 bytes are controllable: the clean tone covers at least
  // those 24 bytes but not the full 31 (the tail reverts to stack bytes).
  EXPECT_GE(r.tone_end_bit - r.tone_start_bit, 24u * 8);
  EXPECT_LT(r.tone_end_bit - r.tone_start_bit, 31u * 8);
}

TEST(SingleTone, SpectrumCollapsesToSingleTone) {
  // The paper's Fig. 9 property: random payload spreads ~1 MHz; the crafted
  // payload concentrates power at +deviation.
  GfskModulator mod;
  SingleToneSpec spec;
  spec.channel_index = 38;
  const SingleToneResult tone_pkt = make_single_tone_packet(spec);

  AdvPacketConfig rnd_cfg;
  itb::dsp::Xoshiro256 rng(3);
  for (int i = 0; i < 31; ++i) {
    rnd_cfg.payload.push_back(static_cast<std::uint8_t>(rng.uniform_int(256)));
  }
  const AdvPacket random_pkt = build_adv_packet(rnd_cfg, 38);

  const auto payload_samples = [&](const AdvPacket& pkt) {
    const itb::dsp::CVec all = mod.modulate(pkt.air_bits);
    const std::size_t sps = mod.samples_per_symbol();
    return itb::dsp::CVec(all.begin() + pkt.payload_start_bit * sps,
                          all.begin() + pkt.payload_end_bit * sps);
  };

  const itb::dsp::CVec tone_sig = payload_samples(tone_pkt.packet);
  const itb::dsp::CVec rand_sig = payload_samples(random_pkt);

  const itb::dsp::Psd tone_psd =
      itb::dsp::welch_psd(tone_sig, mod.config().sample_rate_hz);
  const itb::dsp::Psd rand_psd =
      itb::dsp::welch_psd(rand_sig, mod.config().sample_rate_hz);

  EXPECT_LT(itb::dsp::occupied_bandwidth_hz(tone_psd, 0.99), 200e3);
  EXPECT_GT(itb::dsp::occupied_bandwidth_hz(rand_psd, 0.99), 600e3);
  EXPECT_NEAR(itb::dsp::peak_frequency_hz(tone_psd), 250e3, 40e3);
}

// --- device profiles -----------------------------------------------------------

TEST(DeviceProfile, ProfilesAreDistinct) {
  const DeviceProfile a = ti_cc2650();
  const DeviceProfile b = galaxy_s5();
  const DeviceProfile c = moto360();
  EXPECT_LT(std::abs(a.cfo_hz), std::abs(b.cfo_hz));
  EXPECT_LT(std::abs(b.cfo_hz), std::abs(c.cfo_hz));
  EXPECT_LT(a.phase_noise_rad_rms, c.phase_noise_rad_rms);
}

TEST(DeviceProfile, CfoShiftsTone) {
  GfskModulator mod;
  const Bits bits(256, 1);
  const itb::dsp::CVec clean = mod.modulate(bits);
  DeviceProfile p = ti_cc2650();
  p.cfo_hz = 100e3;
  p.phase_noise_rad_rms = 0.0;
  itb::dsp::Xoshiro256 rng(4);
  const itb::dsp::CVec impaired =
      apply_impairments(clean, p, mod.config().sample_rate_hz, rng);
  const itb::dsp::Psd psd =
      itb::dsp::welch_psd(impaired, mod.config().sample_rate_hz);
  EXPECT_NEAR(itb::dsp::peak_frequency_hz(psd), 350e3, 40e3);
}

TEST(DeviceProfile, TxPowerScalesAmplitude) {
  GfskModulator mod;
  const Bits bits(32, 1);
  const itb::dsp::CVec clean = mod.modulate(bits);
  DeviceProfile p = ti_cc2650();
  p.tx_power_dbm = 20.0;
  p.phase_noise_rad_rms = 0.0;
  p.cfo_hz = 0.0;
  itb::dsp::Xoshiro256 rng(5);
  const itb::dsp::CVec loud =
      apply_impairments(clean, p, mod.config().sample_rate_hz, rng);
  EXPECT_NEAR(itb::dsp::mean_power(loud) / itb::dsp::mean_power(clean), 100.0, 1.0);
}

// --- advertiser timing ----------------------------------------------------------

TEST(Advertiser, ScheduleCoversThreeChannels) {
  AdvertiserTiming t;
  const auto slots = advertising_schedule(t, 376.0, 2);
  ASSERT_EQ(slots.size(), 6u);
  EXPECT_EQ(slots[0].channel_index, 37u);
  EXPECT_EQ(slots[1].channel_index, 38u);
  EXPECT_EQ(slots[2].channel_index, 39u);
  EXPECT_DOUBLE_EQ(slots[0].start_us, 0.0);
  EXPECT_DOUBLE_EQ(slots[1].start_us, 376.0 + 400.0);
  EXPECT_DOUBLE_EQ(slots[3].start_us, 20000.0);
}

TEST(Advertiser, ReservationWindowFormula) {
  AdvertiserTiming t;
  // Paper §2.3.3: 2 * dT + T_bluetooth.
  EXPECT_DOUBLE_EQ(reservation_window_us(t, 376.0), 1176.0);
}

}  // namespace
}  // namespace itb::ble
